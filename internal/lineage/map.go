package lineage

import "fmt"

// Map is the LineageMap of §3.2: it maps live variable names to the lineage
// DAGs of their current values. It is rebuilt incrementally at runtime by
// TRACE calls on the instruction execution path.
type Map struct {
	items map[string]*Item
	// traced counts TRACE calls for statistics.
	traced int64
}

// NewMap returns an empty lineage map.
func NewMap() *Map {
	return &Map{items: make(map[string]*Item)}
}

// Trace records that executing opcode over the named inputs (plus literal
// data) produced the output variable, and returns the new lineage item.
// Unknown input variables are traced as leaves, which covers persistent
// reads and externally bound inputs.
func (m *Map) Trace(output, opcode, data string, inputs ...string) *Item {
	in := make([]*Item, len(inputs))
	for i, name := range inputs {
		in[i] = m.GetOrLeaf(name)
	}
	it := NewItem(opcode, data, in...)
	m.items[output] = it
	m.traced++
	return it
}

// TraceItem binds an already-constructed lineage item to a variable. Used
// by the reuse path to compact the map: after a successful probe, the map
// entry is replaced by the cached entry's key so future DAGs share sub-DAGs
// by object identity (paper Figure 5).
func (m *Map) TraceItem(output string, it *Item) {
	m.items[output] = it
}

// Get returns the lineage of a live variable, or nil if unknown.
func (m *Map) Get(name string) *Item { return m.items[name] }

// GetOrLeaf returns the lineage of a live variable, creating a leaf item for
// names that were never traced (persistent inputs).
func (m *Map) GetOrLeaf(name string) *Item {
	if it, ok := m.items[name]; ok {
		return it
	}
	leaf := NewLeaf("read", name)
	m.items[name] = leaf
	return leaf
}

// Bind copies the lineage of src to dst (variable assignment).
func (m *Map) Bind(dst, src string) {
	if it, ok := m.items[src]; ok {
		m.items[dst] = it
	} else {
		delete(m.items, dst)
	}
}

// Remove drops a variable from the map (end of scope).
func (m *Map) Remove(name string) { delete(m.items, name) }

// Len returns the number of live variables.
func (m *Map) Len() int { return len(m.items) }

// Traced returns the number of Trace calls.
func (m *Map) Traced() int64 { return m.traced }

// Snapshot returns a copy of the current name->item bindings; used when
// entering function scopes.
func (m *Map) Snapshot() map[string]*Item {
	cp := make(map[string]*Item, len(m.items))
	for k, v := range m.items {
		cp[k] = v
	}
	return cp
}

// Restore replaces the bindings with a snapshot.
func (m *Map) Restore(s map[string]*Item) {
	m.items = make(map[string]*Item, len(s))
	for k, v := range s {
		m.items[k] = v
	}
}

// String renders the map for debugging.
func (m *Map) String() string {
	return fmt.Sprintf("LineageMap{%d live vars, %d traced}", len(m.items), m.traced)
}
