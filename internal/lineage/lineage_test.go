package lineage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLeafEquality(t *testing.T) {
	a := NewLeaf("read", "X")
	b := NewLeaf("read", "X")
	c := NewLeaf("read", "Y")
	if !a.Equals(b) {
		t.Fatal("identical leaves must be equal")
	}
	if a.Equals(c) {
		t.Fatal("leaves with different data must differ")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("equal items must have equal hashes")
	}
}

func TestDagEquality(t *testing.T) {
	build := func() *Item {
		x := NewLeaf("read", "X")
		y := NewLeaf("read", "y")
		tx := NewItem("t", "", x)
		return NewItem("ba*", "", tx, y)
	}
	if !build().Equals(build()) {
		t.Fatal("structurally identical DAGs must be equal")
	}
}

func TestDagInequalityByOpcode(t *testing.T) {
	x := NewLeaf("read", "X")
	a := NewItem("t", "", x)
	b := NewItem("exp", "", x)
	if a.Equals(b) {
		t.Fatal("different opcodes must differ")
	}
}

func TestDagInequalityByData(t *testing.T) {
	x := NewLeaf("read", "X")
	a := NewItem("dropout", "p=0.5,seed=1", x)
	b := NewItem("dropout", "p=0.5,seed=2", x)
	if a.Equals(b) {
		t.Fatal("different seeds must produce different lineage")
	}
}

func TestDagInequalityByStructure(t *testing.T) {
	x := NewLeaf("read", "X")
	y := NewLeaf("read", "Y")
	a := NewItem("ba+*", "", x, y)
	b := NewItem("ba+*", "", y, x)
	if a.Equals(b) {
		t.Fatal("operand order matters")
	}
}

func TestEqualsNil(t *testing.T) {
	var a *Item
	b := NewLeaf("read", "X")
	if a.Equals(b) || b.Equals(a) {
		t.Fatal("nil comparisons must be false")
	}
	if !a.Equals(nil) {
		t.Fatal("nil equals nil")
	}
}

func TestSharedSubDagFastPath(t *testing.T) {
	// Build a deep ladder sharing one instance, then compare an identical
	// separate one: must still be equal (memoization correctness).
	mk := func(shared *Item) *Item {
		cur := shared
		for i := 0; i < 100; i++ {
			cur = NewItem("op", fmt.Sprint(i), cur, shared)
		}
		return cur
	}
	base := NewLeaf("read", "X")
	a := mk(base)
	b := mk(base)
	if !a.Equals(b) {
		t.Fatal("DAGs sharing sub-structures must compare equal")
	}
}

func TestHeight(t *testing.T) {
	x := NewLeaf("read", "X")
	if x.Height() != 1 {
		t.Fatalf("leaf height = %d, want 1", x.Height())
	}
	t1 := NewItem("t", "", x)
	t2 := NewItem("t", "", t1)
	if t2.Height() != 3 {
		t.Fatalf("height = %d, want 3", t2.Height())
	}
}

func TestSizeCountsDistinctNodes(t *testing.T) {
	x := NewLeaf("read", "X")
	tx := NewItem("t", "", x)
	mm := NewItem("ba+*", "", tx, x) // shares x
	if mm.Size() != 3 {
		t.Fatalf("Size = %d, want 3", mm.Size())
	}
}

func TestMapTraceAndBind(t *testing.T) {
	m := NewMap()
	it := m.Trace("a", "rand", "rows=2,cols=2,seed=1")
	if m.Get("a") != it {
		t.Fatal("Trace did not bind output")
	}
	m.Trace("b", "t", "", "a")
	if m.Get("b").Inputs()[0] != it {
		t.Fatal("input lineage not linked")
	}
	m.Bind("c", "b")
	if m.Get("c") != m.Get("b") {
		t.Fatal("Bind must share the item")
	}
	m.Remove("c")
	if m.Get("c") != nil {
		t.Fatal("Remove failed")
	}
	if m.Traced() != 2 {
		t.Fatalf("Traced = %d, want 2", m.Traced())
	}
}

func TestMapUnknownInputBecomesLeaf(t *testing.T) {
	m := NewMap()
	it := m.Trace("out", "t", "", "X")
	in := it.Inputs()[0]
	if in.Opcode() != "read" || in.Data() != "X" {
		t.Fatalf("unknown input should trace as read leaf, got %s %q", in.Opcode(), in.Data())
	}
	// Second use must reuse the same leaf (object identity for sharing).
	it2 := m.Trace("out2", "exp", "", "X")
	if it2.Inputs()[0] != in {
		t.Fatal("repeated unknown input must share one leaf")
	}
}

func TestMapSnapshotRestore(t *testing.T) {
	m := NewMap()
	m.Trace("a", "rand", "s=1")
	snap := m.Snapshot()
	m.Trace("b", "rand", "s=2")
	m.Restore(snap)
	if m.Get("b") != nil || m.Get("a") == nil {
		t.Fatal("Restore did not reset bindings")
	}
}

func TestTraceItemCompaction(t *testing.T) {
	m := NewMap()
	m.Trace("a", "rand", "s=1")
	cachedKey := NewItem("rand", "s=1")
	m.TraceItem("a", cachedKey)
	if m.Get("a") != cachedKey {
		t.Fatal("TraceItem must replace the binding with the cached key")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	x := NewLeaf("read", "X with spaces \"and quotes\"")
	y := NewLeaf("read", "y")
	tx := NewItem("t", "", x)
	root := NewItem("ba+*", "k=3", tx, y)
	log := Serialize(root)
	back, err := Deserialize(log)
	if err != nil {
		t.Fatal(err)
	}
	if !root.Equals(back) {
		t.Fatalf("round-trip changed the DAG:\n%s", log)
	}
}

func TestSerializeDeterministic(t *testing.T) {
	mk := func() *Item {
		x := NewLeaf("read", "X")
		return NewItem("t", "", NewItem("exp", "", x))
	}
	if Serialize(mk()) != Serialize(mk()) {
		t.Fatal("equal DAGs must serialize identically")
	}
}

func TestSerializeSharedSubDagOnce(t *testing.T) {
	x := NewLeaf("read", "X")
	root := NewItem("ba+*", "", NewItem("t", "", x), x)
	log := Serialize(root)
	if n := strings.Count(log, "read"); n != 1 {
		t.Fatalf("shared leaf serialized %d times, want 1\n%s", n, log)
	}
}

func TestDeserializeErrors(t *testing.T) {
	cases := []string{
		"",
		"0 op",
		"abc op \"\" ",
		"0 op \"\" 5", // forward/unknown reference
	}
	for _, c := range cases {
		if _, err := Deserialize(c); err == nil {
			t.Errorf("Deserialize(%q) should fail", c)
		}
	}
}

// Property: random DAGs round-trip through serialization preserving equality.
func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := []*Item{NewLeaf("read", "X"), NewLeaf("read", "Y")}
		for i := 0; i < 3+rng.Intn(15); i++ {
			nIn := 1 + rng.Intn(2)
			ins := make([]*Item, nIn)
			for j := range ins {
				ins[j] = nodes[rng.Intn(len(nodes))]
			}
			nodes = append(nodes, NewItem(fmt.Sprintf("op%d", rng.Intn(4)), fmt.Sprint(rng.Intn(3)), ins...))
		}
		root := nodes[len(nodes)-1]
		back, err := Deserialize(Serialize(root))
		return err == nil && root.Equals(back) && back.Hash() == root.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: equal DAGs have equal hashes and heights (hash consistency).
func TestHashConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		build := func() *Item {
			cur := NewLeaf("read", "X")
			for _, op := range ops {
				cur = NewItem(fmt.Sprintf("op%d", op%5), "", cur)
			}
			return cur
		}
		a, b := build(), build()
		return a.Equals(b) && a.Hash() == b.Hash() && a.Height() == b.Height()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEqualsDeepChain(b *testing.B) {
	mk := func() *Item {
		cur := NewLeaf("read", "X")
		for i := 0; i < 1000; i++ {
			cur = NewItem("op", "", cur)
		}
		return cur
	}
	x, y := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Equals(y) {
			b.Fatal("must be equal")
		}
	}
}

func BenchmarkProbeHashMismatch(b *testing.B) {
	x := NewItem("op", "1", NewLeaf("read", "X"))
	y := NewItem("op", "2", NewLeaf("read", "X"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.Equals(y) {
			b.Fatal("must differ")
		}
	}
}
