package lineage

import (
	"sort"
	"sync"
)

// ReuseStats records per-(op-type, backend, shape-class) lineage-cache
// probe/hit tallies — the raw counts behind the closed-loop cost model's
// reuse probabilities. The runtime notes every fine-grained probe against
// the backend the operator was placed on; the serving layer's shared cache
// keeps its own recorder for cross-tenant probes. Counts are pure
// functions of the execution trace, so two replays of the same program
// produce identical tallies.
//
// A mutex guards the map: session use is single-goroutine, but the serve
// shared cache records from concurrent workers.
type ReuseStats struct {
	mu sync.Mutex
	m  map[ReuseKey]*ReuseTally
}

// ReuseKey identifies one probe population. Backend uses the
// core.Backend/costs.Backend numbering (CP=0, Spark=1, GPU=2); Class is
// costs.ShapeClass of the output cell count, or -1 when the recording site
// does not know the output size (e.g. a shared-cache miss).
type ReuseKey struct {
	Op      string `json:"op"`
	Backend int    `json:"backend"`
	Class   int    `json:"class"`
}

// ReuseTally is one population's counts.
type ReuseTally struct {
	Probes int64 `json:"probes"`
	Hits   int64 `json:"hits"`
}

// ReuseRow is one sorted snapshot row.
type ReuseRow struct {
	ReuseKey
	ReuseTally
	HitRate float64 `json:"hit_rate"`
}

// NewReuseStats returns an empty recorder.
func NewReuseStats() *ReuseStats {
	return &ReuseStats{m: make(map[ReuseKey]*ReuseTally)}
}

// Note records one probe and whether it was served.
func (s *ReuseStats) Note(op string, backend, class int, hit bool) {
	k := ReuseKey{Op: op, Backend: backend, Class: class}
	s.mu.Lock()
	t := s.m[k]
	if t == nil {
		t = &ReuseTally{}
		s.m[k] = t
	}
	t.Probes++
	if hit {
		t.Hits++
	}
	s.mu.Unlock()
}

// sortedKeys returns the populations in deterministic order.
func (s *ReuseStats) sortedKeys() []ReuseKey {
	keys := make([]ReuseKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Backend != b.Backend {
			return a.Backend < b.Backend
		}
		return a.Class < b.Class
	})
	return keys
}

// Tallies implements costs.ReuseSource: it invokes f once per population
// in sorted key order.
func (s *ReuseStats) Tallies(f func(op string, backend, class int, probes, hits int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range s.sortedKeys() {
		t := s.m[k]
		f(k.Op, k.Backend, k.Class, t.Probes, t.Hits)
	}
}

// Prob returns the raw observed hit rate of one population (0 with no
// probes). Consumers wanting quantized/sample-floored probabilities use
// costs.Calibration instead.
func (s *ReuseStats) Prob(op string, backend, class int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.m[ReuseKey{Op: op, Backend: backend, Class: class}]
	if t == nil || t.Probes == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Probes)
}

// OpProb returns the hit rate of an operator aggregated over backends and
// classes (the serve layer's per-op reuse probability surface).
func (s *ReuseStats) OpProb(op string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var probes, hits int64
	for k, t := range s.m {
		if k.Op == op {
			probes += t.Probes
			hits += t.Hits
		}
	}
	if probes == 0 {
		return 0
	}
	return float64(hits) / float64(probes)
}

// Snapshot returns the sorted rows (deterministic; JSON-stable).
func (s *ReuseStats) Snapshot() []ReuseRow {
	s.mu.Lock()
	defer s.mu.Unlock()
	rows := make([]ReuseRow, 0, len(s.m))
	for _, k := range s.sortedKeys() {
		t := s.m[k]
		row := ReuseRow{ReuseKey: k, ReuseTally: *t}
		if t.Probes > 0 {
			row.HitRate = float64(t.Hits) / float64(t.Probes)
		}
		rows = append(rows, row)
	}
	return rows
}
