// Package lineage implements MEMPHIS's backend-agnostic, fine-grained
// lineage tracing (paper §3.2). A lineage trace is a DAG whose nodes
// (Items) represent operations and whose edges represent data dependencies.
// A lineage item uniquely identifies an intermediate: two intermediates with
// equal lineage DAGs are guaranteed to hold identical values because every
// randomized operation carries its seed in the item's data field.
//
// Items are immutable after construction; their hash is precomputed by
// hashing the input items' hashes, the opcode, and the data items, so DAG
// probing is cheap. Equality uses a non-recursive, queue-based comparison
// with sub-DAG memoization and early aborts on hash mismatch, height
// difference, and shared sub-DAGs (object identity), as described in §3.2.
package lineage

import (
	"hash/fnv"
	"sync/atomic"
)

// Item is one node of a lineage DAG.
type Item struct {
	id     uint64
	opcode string
	data   string
	inputs []*Item
	hash   uint64
	height int
}

// nextID allocates distinct object identities for memoization and
// serialization; it never affects hashing or equality.
var nextID atomic.Uint64

// NewLeaf returns a lineage item with no inputs, e.g. a literal, a read of a
// persistent dataset, or a function argument binding.
func NewLeaf(opcode, data string) *Item {
	return NewItem(opcode, data)
}

// NewItem returns a lineage item for an operation with the given opcode,
// serialized data items (scalar literals, seeds, dimensions), and inputs.
func NewItem(opcode, data string, inputs ...*Item) *Item {
	it := &Item{
		id:     nextID.Add(1),
		opcode: opcode,
		data:   data,
		inputs: inputs,
	}
	h := fnv.New64a()
	h.Write([]byte(opcode))
	h.Write([]byte{0})
	h.Write([]byte(data))
	var buf [8]byte
	maxH := 0
	for _, in := range inputs {
		v := in.hash
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
		if in.height > maxH {
			maxH = in.height
		}
	}
	it.hash = h.Sum64()
	it.height = maxH + 1
	return it
}

// ID returns the item's unique object identity.
func (it *Item) ID() uint64 { return it.id }

// Opcode returns the operation code.
func (it *Item) Opcode() string { return it.opcode }

// Data returns the serialized data items (literals, seeds).
func (it *Item) Data() string { return it.data }

// Inputs returns the input items. The returned slice must not be modified.
func (it *Item) Inputs() []*Item { return it.inputs }

// Hash returns the precomputed DAG hash.
func (it *Item) Hash() uint64 { return it.hash }

// Height returns the height of the item's DAG (leaves have height 1).
// The GPU eviction policy (Eq. 2) uses height to preserve input-data-pipeline
// intermediates, which sit close to the inputs.
func (it *Item) Height() int { return it.height }

// pairKey identifies an (a, b) comparison for memoization.
type pairKey struct{ a, b uint64 }

// Equals reports whether two lineage DAGs are structurally identical. It is
// non-recursive (explicit queue), memoizes compared sub-DAG pairs, and
// aborts early on hash or height mismatches and on shared sub-DAGs.
func (it *Item) Equals(other *Item) bool {
	if it == other {
		return true
	}
	if it == nil || other == nil {
		return false
	}
	if it.hash != other.hash || it.height != other.height {
		return false
	}
	seen := make(map[pairKey]struct{})
	queue := [][2]*Item{{it, other}}
	for len(queue) > 0 {
		a, b := queue[0][0], queue[0][1]
		queue = queue[1:]
		if a == b {
			continue // shared sub-DAG: object identity
		}
		key := pairKey{a.id, b.id}
		if _, ok := seen[key]; ok {
			continue // already compared
		}
		seen[key] = struct{}{}
		if a.hash != b.hash || a.height != b.height ||
			a.opcode != b.opcode || a.data != b.data ||
			len(a.inputs) != len(b.inputs) {
			return false
		}
		for i := range a.inputs {
			queue = append(queue, [2]*Item{a.inputs[i], b.inputs[i]})
		}
	}
	return true
}

// Size returns the number of distinct nodes in the DAG rooted at it.
func (it *Item) Size() int {
	seen := make(map[uint64]struct{})
	stack := []*Item{it}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[n.id]; ok {
			continue
		}
		seen[n.id] = struct{}{}
		stack = append(stack, n.inputs...)
	}
	return len(seen)
}
