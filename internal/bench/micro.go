package bench

import (
	"fmt"
	"math/rand"

	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/gpu"
	"memphis/internal/runtime"
	"memphis/internal/spark"
	"memphis/internal/vtime"
	"memphis/internal/workloads"
)

// Table2 reproduces Table 2 (backend properties) by probing the simulated
// backends: exchange/copy bandwidths are measured end-to-end through the
// simulator rather than read from the cost model.
func Table2() *Table {
	model := costs.Default()
	// Spark exchange: time a 4 MB shuffle through a wide RDD.
	clock := vtime.New()
	sc := spark.NewContext(clock, model, spark.DefaultConfig())
	m := data.Ones(64*1024, 8) // 4 MB
	x := sc.Parallelize(m, 8, "probe")
	before := clock.Now()
	_ = sc.Collect(spark.TSMM(x))
	sparkElapsed := clock.Now() - before

	// GPU H2D: time a 4 MB pageable copy.
	clock2 := vtime.New()
	dev := gpu.NewDevice(clock2, model, "gpu0", 64<<20)
	before = clock2.Now()
	p, _ := dev.H2D(m)
	h2d := clock2.Now() - before
	_ = p

	gbps := func(bytes int64, secs float64) string {
		return fmt.Sprintf("%.1f GB/s", float64(bytes)/secs/1e9)
	}
	return &Table{
		ID:     "table2",
		Title:  "Properties of Spark, GPU, and CPU backends",
		Header: []string{"Backend", "Exec", "Memory", "Bandwidth", "Cache-API", "Workload"},
		Rows: [][]string{
			{"Spark", "Lazy", "Distrib.", fmt.Sprintf("%.0f GB/s (exch.)", model.SparkExchangeBW/1e9), "Yes", "Large data"},
			{"GPU", "Async.", "Small", gbps(m.SizeBytes(), h2d) + " (H2D)", "No", "Mini-batch, DNN"},
			{"CPU", "Eager", "Varying", "-", "No", "All"},
		},
		Notes: []string{
			fmt.Sprintf("measured: 4MB TSMM job on Spark took %.4g s (incl. %.0f ms job overhead)",
				sparkElapsed, model.SparkJobOverhead*1e3),
			"paper Table 2: Spark 15 GB/s, GPU 6.1 GB/s pageable H2D",
		},
	}
}

// Fig2c reproduces the Figure 2(c) motivation: eagerly materializing every
// RDD is ~10x slower than no caching, while MEMPHIS's lazy persist +
// lineage reuse is ~2x faster. We build a stream of map transformations
// (scaled 1:10 from the paper's 12K RDDs with 4K reusable) and trigger an
// action every few steps.
func Fig2c(nRDDs int, reusableFrac float64) *Table {
	type result struct {
		name string
		time float64
		jobs int64
	}
	// The workload is a stream of short pipelines (8 transformations each,
	// one action at the end), where pipeline steps repeat with the given
	// probability — the incremental-modification pattern of exploratory
	// data science.
	const pipeLen = 8
	// Pipelines repeat incrementally: with probability reusableFrac a new
	// pipeline copies an earlier one and modifies only its last step.
	nPipes := nRDDs / pipeLen
	rng := rand.New(rand.NewSource(7))
	pipes := make([][]float64, nPipes)
	for pi := range pipes {
		if pi > 0 && rng.Float64() < reusableFrac {
			src := pipes[rng.Intn(pi)]
			cp := append([]float64(nil), src...)
			cp[pipeLen-1] = rng.Float64()
			pipes[pi] = cp
		} else {
			fresh := make([]float64, pipeLen)
			for j := range fresh {
				fresh[j] = rng.Float64()
			}
			pipes[pi] = fresh
		}
	}
	run := func(mode string) result {
		clock := vtime.New()
		model := costs.Default()
		sc := spark.NewContext(clock, model, spark.DefaultConfig())
		base := sc.Parallelize(data.Ones(4096, 16), 8, "X")
		// Lineage-keyed reuse cache: chain signature -> RDD handle.
		cache := make(map[string]*spark.RDD)
		for pi := range pipes {
			cur := base
			sig := ""
			for i, op := range pipes[pi] {
				op := op
				sig += fmt.Sprintf("|%g", op)
				_ = i
				if mode == "memphis" {
					if r, ok := cache[sig]; ok {
						cur = r
						continue
					}
				}
				cur = cur.MapPartitions(fmt.Sprintf("op%d", i), 4096, 16,
					func(int) float64 { return 4096 * 16 },
					nil, func(_ int, p *data.Matrix) *data.Matrix {
						return data.AddScalar(p, op)
					})
				switch mode {
				case "eager":
					// Eager materialization: persist + count per RDD.
					cur.Persist(spark.StorageMemory)
					_, _ = sc.Count(cur, false)
				case "memphis":
					cur.Persist(spark.StorageMemory)
					cache[sig] = cur
				}
			}
			// One action per pipeline drives execution.
			_, _ = sc.Count(cur, false)
		}
		return result{mode, clock.Now(), sc.Stats.Jobs}
	}
	rows := [][]string{}
	none := run("none")
	for _, r := range []result{none, run("eager"), run("memphis")} {
		rows = append(rows, []string{r.name, fmtTime(r.time), fmtX(none.time, r.time),
			fmt.Sprint(r.jobs)})
	}
	return &Table{
		ID:     "fig2c",
		Title:  fmt.Sprintf("Eager vs lazy RDD caching (%d RDDs, %.0f%% reusable)", nRDDs, reusableFrac*100),
		Header: []string{"Config", "Time[s]", "vs NoCache", "Jobs"},
		Rows:   rows,
		Notes:  []string{"paper: eager 10x slower than no caching; MEMPHIS ~2x faster"},
	}
}

// Fig2d reproduces the Figure 2(d) GPU overhead breakdown: a single affine
// layer with ReLU where every kernel allocates, copies out, and frees.
func Fig2d(batches, batchRows, dim int) *Table {
	clock := vtime.New()
	model := costs.Default()
	dev := gpu.NewDevice(clock, model, "gpu0", 1<<30)
	w := data.RandNorm(dim, dim, 0, 0.1, 1)
	x := data.RandNorm(batchRows, dim, 0, 1, 2)
	wp, _ := dev.H2D(w)
	var alloc, free, compute, copyOut, copyIn float64
	for i := 0; i < batches; i++ {
		t0 := clock.Now()
		xp, _ := dev.H2D(x)
		t1 := clock.Now()
		out, err := dev.Malloc(int64(batchRows*dim) * 8)
		if err != nil {
			panic(err)
		}
		t2 := clock.Now()
		dev.Launch(costs.MatMulFlops(batchRows, dim, dim), out, func() *data.Matrix {
			return data.ReLU(data.MatMul(xp.Value(), wp.Value()))
		})
		dev.Sync()
		t3 := clock.Now()
		_ = dev.D2H(out)
		t4 := clock.Now()
		dev.Free(out)
		dev.Free(xp)
		t5 := clock.Now()
		copyIn += t1 - t0
		alloc += t2 - t1
		compute += t3 - t2
		copyOut += t4 - t3
		free += t5 - t4
	}
	rows := [][]string{
		{"compute", fmtTime(compute), "1.00x"},
		{"alloc+free", fmtTime(alloc + free), fmtX(alloc+free, compute)},
		{"copy (D2H)", fmtTime(copyOut), fmtX(copyOut, compute)},
		{"copy (H2D)", fmtTime(copyIn), fmtX(copyIn, compute)},
	}
	return &Table{
		ID:     "fig2d",
		Title:  fmt.Sprintf("GPU execution overhead (%d batches of %dx%d affine+ReLU)", batches, batchRows, dim),
		Header: []string{"Phase", "Time[s]", "vs compute"},
		Rows:   rows,
		Notes:  []string{"paper: alloc/free 4.6x and copy 9x of compute"},
	}
}

// cpuOnly returns the system with the GPU backend disabled (the §6.2
// CPU/Spark micro benchmarks compare like-for-like without accelerators).
func cpuOnly(sys System) System {
	sys.GPU = false
	return sys
}

// Fig11a reproduces the reuse-overhead study: L2SVM hyper-parameter trials
// over growing input sizes with varying reusable fractions. Small inputs
// are dominated by interpretation; tracing adds ~1.3x, probing ~2x; large
// inputs amortize both and reuse wins.
func Fig11a(trials, iters int) *Table {
	sizes := []struct {
		label string
		rows  int
	}{
		{"800B", 4}, {"8KB", 40}, {"80KB", 400}, {"800KB", 4000}, {"8MB", 40000},
	}
	const cols = 25
	env := DefaultEnv()
	env.OpMemBudget = 1 << 30 // keep everything local like the paper's setup
	configs := []struct {
		name  string
		sys   System
		reuse float64
	}{
		{"Base", Base, 0},
		{"Trace", Trace, 0},
		{"Probe", cpuOnly(MPHEager), 0},
		{"20%", cpuOnly(MPHEager), 0.2},
		{"40%", cpuOnly(MPHEager), 0.4},
		{"80%", cpuOnly(MPHEager), 0.8},
	}
	t := &Table{
		ID:     "fig11a",
		Title:  fmt.Sprintf("Lineage tracing and reuse overhead (%d trials x %d iters)", trials, iters),
		Header: []string{"InputSize", "Config", "Time[s]", "vs Base"},
		Notes:  []string{"paper: tracing 1.3x / probing 2x on tiny inputs; 1.1-3x speedup at 8MB"},
	}
	for _, sz := range sizes {
		var baseTime float64
		for _, cfg := range configs {
			regs := workloads.ReuseKnob(trials, cfg.reuse, 31)
			build := func() *workloads.Workload {
				return workloads.L2SVMMicro(sz.rows, cols, iters, regs, 7)
			}
			secs, _, err := cfg.sys.Run(env, build)
			if err != nil {
				panic(err)
			}
			if cfg.name == "Base" {
				baseTime = secs
			}
			t.Rows = append(t.Rows, []string{sz.label, cfg.name, fmtTime(secs), fmtX(baseTime, secs)})
		}
	}
	return t
}

// Fig11b scales the instruction count at fixed input size (the paper's 1M-5M
// instructions at 8MB, scaled down), including the 40%INF no-eviction cache.
func Fig11b(rows, cols, iters int, trialCounts []int) *Table {
	env := DefaultEnv()
	env.OpMemBudget = 1 << 30
	bigCache := env
	bigCache.CPBudget = 1 << 30
	configs := []struct {
		name  string
		sys   System
		env   Env
		reuse float64
	}{
		{"Base", Base, env, 0},
		{"Probe", cpuOnly(MPHEager), env, 0},
		{"20%", cpuOnly(MPHEager), env, 0.2},
		{"40%", cpuOnly(MPHEager), env, 0.4},
		{"40%INF", cpuOnly(MPHEager), bigCache, 0.4},
	}
	t := &Table{
		ID:     "fig11b",
		Title:  "Probing overhead vs instruction count",
		Header: []string{"Trials", "Config", "Time[s]", "vs Base"},
		Notes:  []string{"paper: probe overhead grows to 15% at 5M insts; 40% reuse -> 1.5x; INF cache no better"},
	}
	for _, n := range trialCounts {
		var baseTime float64
		for _, cfg := range configs {
			regs := workloads.ReuseKnob(n, cfg.reuse, 31)
			build := func() *workloads.Workload {
				return workloads.L2SVMMicro(rows, cols, iters, regs, 7)
			}
			secs, _, err := cfg.sys.Run(cfg.env, build)
			if err != nil {
				panic(err)
			}
			if cfg.name == "Base" {
				baseTime = secs
			}
			t.Rows = append(t.Rows, []string{fmt.Sprint(n), cfg.name, fmtTime(secs), fmtX(baseTime, secs)})
		}
	}
	return t
}

// Fig12a studies driver cache sizes: the same 40%-reuse workload across
// input sizes, with three lineage-cache budgets (paper: 900MB/5GB/30GB).
func Fig12a(trials, iters int) *Table {
	sizes := []struct {
		label string
		rows  int
	}{
		{"2GB~2MB", 10000}, {"5GB~5MB", 25000}, {"8GB~8MB", 40000}, {"10GB~10MB", 50000},
	}
	const cols = 25
	caches := []struct {
		label  string
		budget int64
	}{
		{"900MB~0.9MB", 900 << 10}, {"5GB~5MB", 5 << 20}, {"30GB~30MB", 30 << 20},
	}
	t := &Table{
		ID:     "fig12a",
		Title:  "Influence of driver cache sizes on reuse potential",
		Header: []string{"InputSize", "Cache", "Time[s]", "vs Base"},
		Notes:  []string{"paper: even 900MB yields 1.2x; 5GB vs 30GB = 1.4x vs 1.6x at large inputs"},
	}
	regs := workloads.ReuseKnob(trials, 0.4, 31)
	for _, sz := range sizes {
		build := func() *workloads.Workload {
			return workloads.L2SVMMicro(sz.rows, cols, iters, regs, 7)
		}
		env := DefaultEnv()
		env.OpMemBudget = 4 << 20 // the largest inputs spill to Spark
		baseSecs, _, err := Base.Run(env, build)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{sz.label, "Base", fmtTime(baseSecs), "1.00x"})
		for _, c := range caches {
			env := env
			env.CPBudget = c.budget
			secs, _, err := cpuOnly(MPHEager).Run(env, build)
			if err != nil {
				panic(err)
			}
			t.Rows = append(t.Rows, []string{sz.label, c.label, fmtTime(secs), fmtX(baseSecs, secs)})
		}
	}
	return t
}

// Fig12b studies GPU cache eviction: ensemble CNN scoring with duplicate
// batches across batch sizes and reuse levels; the device is kept small so
// evictions and recycling are frequent.
func Fig12b(nImages, h, w int, batchSizes []int) *Table {
	t := &Table{
		ID:     "fig12b",
		Title:  fmt.Sprintf("GPU cache eviction: ensemble CNN scoring of %d %dx%d images", nImages, h, w),
		Header: []string{"Batch", "Config", "Time[s]", "vs Base-G", "Recycled", "GPUHits"},
		Notes:  []string{"paper: probe overhead <= 8% at batch 2; 20/40/80% reuse -> 1.3/1.6/4x"},
	}
	env := DefaultEnv()
	env.OpMemBudget = 1 << 30
	env.GPUMinCells = 64
	env.GPUCapacity = 2 << 20 // small device forces evictions
	configs := []struct {
		name  string
		sys   System
		reuse float64
	}{
		{"Base-G", BaseG, 0},
		{"Probe", MPHEager, 0},
		{"20%", MPHEager, 0.2},
		{"40%", MPHEager, 0.4},
		{"80%", MPHEager, 0.8},
	}
	for _, bs := range batchSizes {
		var baseTime float64
		for _, cfg := range configs {
			build := func() *workloads.Workload {
				return workloads.EnsembleCNN(nImages, bs, h, w, cfg.reuse, 41)
			}
			secs, ctx, err := cfg.sys.Run(env, build)
			if err != nil {
				panic(err)
			}
			if cfg.name == "Base-G" {
				baseTime = secs
			}
			recycled, hits := int64(0), int64(0)
			if ctx.GM != nil {
				recycled = ctx.GM.Stats.Recycled
			}
			hits = ctx.Cache.Stats.HitsGPU
			t.Rows = append(t.Rows, []string{fmt.Sprint(bs), cfg.name, fmtTime(secs),
				fmtX(baseTime, secs), fmt.Sprint(recycled), fmt.Sprint(hits)})
		}
	}
	return t
}

// stats accessor kept for report completeness.
var _ = runtime.Stats{}
var _ = sortedKeys[map[string]int]
