// Package bench regenerates every table and figure of the paper's
// evaluation (§6) against the simulated multi-backend stack. Each
// experiment returns a Table whose rows mirror the series the paper plots;
// absolute numbers differ (the substrate is a simulator), but the shapes —
// who wins, by roughly what factor, where crossovers fall — are the
// reproduction target. Inputs are scaled down ~1000x from the paper; rows
// report both the paper-equivalent parameter and the simulated one.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/gpu"
	"memphis/internal/runtime"
	"memphis/internal/spark"
	"memphis/internal/workloads"
)

// Table is one experiment's output.
type Table struct {
	ID     string // e.g. "fig13a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// System is a named runtime configuration emulating one of the paper's
// compared systems (§6.1 baselines).
type System struct {
	Name          string
	Mode          runtime.ReuseMode
	Async         bool // prefetch/broadcast operators (§5.1)
	MaxPar        bool // MAXPARALLELIZE ordering (§5.3)
	Checkpoints   bool // checkpoint rewrites (§5.2)
	AutoTune      bool // delay-factor/storage-level tuning (§5.2)
	Evictions     bool // eviction injection (§5.2)
	GPU           bool
	GPUPolicy     gpu.Policy
	CPAllowlist   map[string]bool
	FuncAllowlist map[string]bool
	ModelTweak    func(*costs.Model)
}

// Presets for the paper's systems.
var (
	Base  = System{Name: "Base", Mode: runtime.ReuseNone, GPUPolicy: gpu.PolicyNone}
	BaseA = System{Name: "Base-A", Mode: runtime.ReuseNone, Async: true, MaxPar: true,
		GPUPolicy: gpu.PolicyNone}
	// Base-P: parallel feature processing via multi-threaded transforms
	// (a faster local backend, no reuse).
	BaseP = System{Name: "Base-P", Mode: runtime.ReuseNone, GPUPolicy: gpu.PolicyNone,
		ModelTweak: func(m *costs.Model) { m.CPUFlops *= 3 }}
	BaseC = System{Name: "Base-C", Mode: runtime.ReuseNone, GPUPolicy: gpu.PolicyNone}
	BaseG = System{Name: "Base-G", Mode: runtime.ReuseNone, GPU: true, GPUPolicy: gpu.PolicyNone}
	Trace = System{Name: "Trace", Mode: runtime.ReuseTrace}
	LIMA  = System{Name: "LIMA", Mode: runtime.ReuseLIMA}
	Helix = System{Name: "HELIX", Mode: runtime.ReuseHelix}
	// CoorDL reuses only the CPU input-data-pipeline operators.
	CoorDL = System{Name: "CoorDL", Mode: runtime.ReuseLIMA, GPU: true, GPUPolicy: gpu.PolicyPool,
		CPAllowlist: map[string]bool{
			"sliceRows": true, "bin": true, "recode": true,
			"onehot": true, "onehotf": true, "scale": true, "minmax": true,
		}}
	// Clipper caches predictions (the scoring function) at the host.
	Clipper = System{Name: "Clipper", Mode: runtime.ReuseHelix, GPU: true,
		GPUPolicy:     gpu.PolicyPool,
		FuncAllowlist: map[string]bool{"score": true}}
	// VISTA applies CSE across transfer-learning pipelines: emulated as
	// fine-grained reuse without MEMPHIS's compiler extensions.
	VISTA = System{Name: "VISTA", Mode: runtime.ReuseMemphisFine, GPU: true,
		GPUPolicy: gpu.PolicyMemphis}
	// PyTorch: eager GPU with a caching pool allocator, no cross-task reuse.
	PyTorch = System{Name: "PyTorch", Mode: runtime.ReuseNone, GPU: true,
		GPUPolicy: gpu.PolicyPool}
	// PyTorch-Clr adds manual empty_cache() between models.
	PyTorchClr = System{Name: "PyTorch-Clr", Mode: runtime.ReuseNone, GPU: true,
		GPUPolicy: gpu.PolicyPool, Evictions: true}
	MPHF = System{Name: "MPH-F", Mode: runtime.ReuseMemphisFine, Async: true, MaxPar: true,
		Checkpoints: true, AutoTune: true, Evictions: true, GPU: true}
	// MPHEager disables the delay-factor auto-tuning: the §6.2 micro
	// benchmarks study plain tracing/probing/eviction behaviour with eager
	// caching, like LIMA's baseline policy extended to all backends.
	MPHEager = System{Name: "MPH", Mode: runtime.ReuseMemphisFine, Async: true, MaxPar: true,
		Checkpoints: true, GPU: true}
	MPHNA = System{Name: "MPH-NA", Mode: runtime.ReuseMemphis,
		Checkpoints: true, AutoTune: true, Evictions: true, GPU: true}
	MPH = System{Name: "MPH", Mode: runtime.ReuseMemphis, Async: true, MaxPar: true,
		Checkpoints: true, AutoTune: true, Evictions: true, GPU: true}
)

// Env sizes the simulated environment for one experiment.
type Env struct {
	OpMemBudget int64 // operation memory: larger ops compile to Spark
	GPUMinCells int
	CPBudget    int64
	SparkBudget int64
	GPUCapacity int64
	NoSpill     bool
}

// DefaultEnv mirrors the paper's memory configuration at ~1/1000 scale.
func DefaultEnv() Env {
	return Env{
		OpMemBudget: 7 << 20, // "7 GB" operation memory
		GPUMinCells: 1024,
		CPBudget:    5 << 20,  // "5 GB" driver lineage cache
		SparkBudget: 55 << 20, // "55 GB" executor reuse share
		GPUCapacity: 48 << 20, // "48 GB" device memory
	}
}

// NewContext instantiates a runtime for the system in the environment.
func (s System) NewContext(env Env) *runtime.Context {
	comp := compiler.DefaultConfig()
	comp.OpMemBudget = env.OpMemBudget
	comp.GPUEnabled = s.GPU
	comp.GPUMinCells = env.GPUMinCells
	comp.Async = s.Async
	comp.MaxParallelize = s.MaxPar
	comp.CheckpointInjection = s.Checkpoints
	cache := core.DefaultConfig()
	cache.CPBudget = env.CPBudget
	cache.SparkBudget = env.SparkBudget
	cache.SpillToDisk = !env.NoSpill
	model := costs.Default()
	if s.ModelTweak != nil {
		s.ModelTweak(model)
	}
	gcap := int64(0)
	if s.GPU && env.GPUCapacity > 0 {
		gcap = env.GPUCapacity
	}
	comp.GPUEnabled = s.GPU && gcap > 0
	return runtime.New(runtime.Config{
		Mode:          s.Mode,
		Compiler:      comp,
		Cache:         cache,
		CPAllowlist:   s.CPAllowlist,
		FuncAllowlist: s.FuncAllowlist,
		Spark:         spark.DefaultConfig(),
		GPUCapacity:   gcap,
		GPUPolicy:     s.GPUPolicy,
		Model:         model,
	})
}

// Run executes a freshly built workload under the system, applying the
// program-level rewrites the system enables, and returns the virtual time
// and the context (for statistics).
func (s System) Run(env Env, build func() *workloads.Workload) (float64, *runtime.Context, error) {
	ctx := s.NewContext(env)
	w := build()
	if s.AutoTune {
		compiler.AutoTune(w.Prog)
	}
	if s.Checkpoints {
		compiler.InjectLoopCheckpoints(w.Prog)
	}
	if s.Evictions {
		compiler.InjectEvictions(w.Prog)
	}
	secs, err := w.Run(ctx)
	return secs, ctx, err
}

// fmtTime renders seconds compactly.
func fmtTime(s float64) string { return fmt.Sprintf("%.4g", s) }

// fmtX renders a speedup factor.
func fmtX(base, t float64) string {
	if t == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", base/t)
}

// sortedKeys is a small helper for deterministic map iteration in reports.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
