package bench

import (
	"strconv"
	"strings"
	"testing"

	"memphis/internal/workloads"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation section must be
	// registered exactly once.
	want := []string{"table2", "fig2c", "fig2d", "fig11a", "fig11b",
		"fig12a", "fig12b", "table3", "fig13a", "fig13b", "fig13c",
		"fig14a", "fig14b", "fig14c", "fig14d", "ablation"}
	seen := make(map[string]bool)
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Quick == nil || e.Desc == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !seen[id] {
			t.Fatalf("experiment %q missing", id)
		}
	}
	if _, err := Find("fig13a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("Find must reject unknown ids")
	}
	if len(IDs()) != len(want) {
		t.Fatalf("IDs() = %d, want %d", len(IDs()), len(want))
	}
}

// timeOf extracts the Time[s] cell of the row matching the system name and
// optional param prefix.
func timeOf(tb *Table, param, system string) float64 {
	for _, r := range tb.Rows {
		if (param == "" || r[0] == param) && r[1] == system {
			v, err := strconv.ParseFloat(r[2], 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

func TestFig2dShape(t *testing.T) {
	tb := Fig2d(20, 128, 1000)
	var compute, alloc, copyOut float64
	for _, r := range tb.Rows {
		v, _ := strconv.ParseFloat(r[1], 64)
		switch r[0] {
		case "compute":
			compute = v
		case "alloc+free":
			alloc = v
		case "copy (D2H)":
			copyOut = v
		}
	}
	// Paper: alloc/free 4.6x, copy 9x of compute; the calibrated model
	// must land in the right regime.
	if alloc < 3*compute || alloc > 8*compute {
		t.Fatalf("alloc/compute = %.1f, want ~4.6", alloc/compute)
	}
	if copyOut < 4*compute || copyOut > 12*compute {
		t.Fatalf("copy/compute = %.1f, want ~9 regime", copyOut/compute)
	}
}

func TestFig2cEagerSlowest(t *testing.T) {
	tb := Fig2c(200, 0.5)
	cell := func(name string) float64 {
		for _, r := range tb.Rows {
			if r[0] == name {
				v, _ := strconv.ParseFloat(r[1], 64)
				return v
			}
		}
		return -1
	}
	none := cell("none")
	eager := cell("eager")
	mph := cell("memphis")
	if eager < 4*none {
		t.Fatalf("eager (%g) must be several times slower than none (%g)", eager, none)
	}
	if mph >= none {
		t.Fatalf("memphis (%g) must beat no caching (%g)", mph, none)
	}
}

func TestFig13bSuperlinearBase(t *testing.T) {
	tb := Fig13b(2000, 40, 8, []int{5, 15})
	base4, base12 := timeOf(tb, "5", "Base"), timeOf(tb, "15", "Base")
	mph12 := timeOf(tb, "15", "MPH")
	// Base re-executes all previous iterations: tripling iterations must
	// grow time far more than 3x.
	if base12 < 4*base4 {
		t.Fatalf("Base not superlinear: %g -> %g", base4, base12)
	}
	if mph12 >= base12 {
		t.Fatal("MPH must beat Base at higher iteration counts")
	}
}

func TestSystemPresetsDistinct(t *testing.T) {
	env := DefaultEnv()
	env.OpMemBudget = 4 << 20
	build := func() *workloads.Workload {
		return workloads.HCV(32000, 48, 2, []float64{0.1, 1, 10}, 7)
	}
	baseT, baseCtx, err := Base.Run(env, build)
	if err != nil {
		t.Fatal(err)
	}
	if baseCtx.Cache.Stats.Probes != 0 {
		t.Fatal("Base must not probe")
	}
	asyncT, _, err := BaseA.Run(env, build)
	if err != nil {
		t.Fatal(err)
	}
	if asyncT >= baseT {
		t.Fatalf("Base-A (%g) must beat Base (%g) via concurrent jobs", asyncT, baseT)
	}
	mphT, mphCtx, err := MPH.Run(env, build)
	if err != nil {
		t.Fatal(err)
	}
	if mphT >= asyncT {
		t.Fatalf("MPH (%g) must beat Base-A (%g)", mphT, asyncT)
	}
	if mphCtx.Stats.ActionReuses == 0 {
		t.Fatal("MPH must reuse Spark actions in HCV")
	}
}

func TestTableString(t *testing.T) {
	tb := Table3()
	s := tb.String()
	if !strings.Contains(s, "PNMF") || !strings.Contains(s, "table3") {
		t.Fatalf("table rendering broken:\n%s", s)
	}
}
