package bench

import (
	"fmt"
	"sort"
)

// Experiment couples an id with a runner using default (laptop-scale)
// parameters. The cmd/memphis-bench binary and the root bench_test.go both
// drive this registry, so the printed rows are identical everywhere.
type Experiment struct {
	ID    string
	Desc  string
	Run   func() *Table
	Quick func() *Table // reduced-size variant for testing.B loops
}

// Registry lists every table and figure of the paper's evaluation.
func Registry() []Experiment {
	return []Experiment{
		{
			ID: "table2", Desc: "Backend properties (Table 2)",
			Run:   Table2,
			Quick: Table2,
		},
		{
			ID: "fig2c", Desc: "Eager vs lazy RDD caching (Figure 2c)",
			Run:   func() *Table { return Fig2c(1200, 0.33) },
			Quick: func() *Table { return Fig2c(200, 0.33) },
		},
		{
			ID: "fig2d", Desc: "GPU execution overhead (Figure 2d)",
			Run:   func() *Table { return Fig2d(1000, 128, 1000) },
			Quick: func() *Table { return Fig2d(50, 128, 1000) },
		},
		{
			ID: "fig11a", Desc: "Tracing/probing overhead vs input size (Figure 11a)",
			Run:   func() *Table { return Fig11a(25, 4) },
			Quick: func() *Table { return Fig11a(8, 2) },
		},
		{
			ID: "fig11b", Desc: "Probing overhead vs instruction count (Figure 11b)",
			Run:   func() *Table { return Fig11b(40000, 25, 4, []int{10, 25, 50}) },
			Quick: func() *Table { return Fig11b(4000, 25, 2, []int{5, 10}) },
		},
		{
			ID: "fig12a", Desc: "Driver cache sizes (Figure 12a)",
			Run:   func() *Table { return Fig12a(25, 4) },
			Quick: func() *Table { return Fig12a(6, 2) },
		},
		{
			ID: "fig12b", Desc: "GPU cache eviction (Figure 12b)",
			Run:   func() *Table { return Fig12b(512, 6, 6, []int{2, 4, 8, 16}) },
			Quick: func() *Table { return Fig12b(128, 6, 6, []int{4, 8}) },
		},
		{
			ID: "table3", Desc: "Pipeline & dataset overview (Table 3)",
			Run:   Table3,
			Quick: Table3,
		},
		{
			ID: "fig13a", Desc: "HCV end-to-end (Figure 13a)",
			Run: func() *Table {
				return Fig13a([]int{4000, 8000, 16000, 32000}, 48, 3,
					[]float64{1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4, 1e5, 1e6})
			},
			Quick: func() *Table {
				return Fig13a([]int{4000, 16000}, 32, 3, []float64{0.01, 0.1, 1, 10})
			},
		},
		{
			ID: "fig13b", Desc: "PNMF end-to-end (Figure 13b)",
			Run:   func() *Table { return Fig13b(3000, 60, 8, []int{5, 15, 25, 35, 45}) },
			Quick: func() *Table { return Fig13b(2000, 40, 8, []int{5, 15}) },
		},
		{
			ID: "fig13c", Desc: "HBAND end-to-end (Figure 13c)",
			Run:   func() *Table { return Fig13c([]int{16000, 32000, 64000}, 96) },
			Quick: func() *Table { return Fig13c([]int{32000}, 64) },
		},
		{
			ID: "fig14a", Desc: "CLEAN end-to-end (Figure 14a)",
			Run:   func() *Table { return Fig14a(8000, 16, []int{2, 10, 20}) },
			Quick: func() *Table { return Fig14a(8000, 12, []int{10}) },
		},
		{
			ID: "fig14b", Desc: "HDROP end-to-end (Figure 14b)",
			Run: func() *Table {
				return Fig14b(2048, 10, 500, []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}, 4, 256)
			},
			Quick: func() *Table { return Fig14b(1024, 10, 500, []float64{0.1, 0.3}, 2, 256) },
		},
		{
			ID: "fig14c", Desc: "EN2DE end-to-end (Figure 14c)",
			Run:   func() *Table { return Fig14c(2000, 300, 32, 64) },
			Quick: func() *Table { return Fig14c(400, 100, 16, 32) },
		},
		{
			ID: "fig14d", Desc: "TLVIS end-to-end (Figure 14d)",
			Run:   func() *Table { return Fig14d(64, 8) },
			Quick: func() *Table { return Fig14d(16, 8) },
		},
		{
			ID: "ablation", Desc: "Ablation of MEMPHIS design choices (extension)",
			Run:   func() *Table { return Ablation(32000, 25) },
			Quick: func() *Table { return Ablation(32000, 10) },
		},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
