package bench

import (
	"encoding/json"
	"runtime"
)

// Result is the machine-readable form of one experiment run, emitted by
// `memphis-bench -json` so BENCH_*.json trajectory files can accumulate
// across sessions. Rows carry the virtual times (and speedup columns) the
// table prints; WallSeconds is the simulator's real regeneration cost at
// the recorded kernel parallelism. AllocsPerOp/BytesPerOp are the heap
// allocation deltas (runtime.ReadMemStats Mallocs/TotalAlloc) of one
// experiment regeneration — the "op" is the whole table rebuild — so the
// fusion/arena alloc savings stay visible in trajectory files.
type Result struct {
	ID          string     `json:"id"`
	Title       string     `json:"title"`
	Header      []string   `json:"header"`
	Rows        [][]string `json:"rows"`
	Notes       []string   `json:"notes,omitempty"`
	WallSeconds float64    `json:"wall_seconds"`
	Parallelism int        `json:"parallelism"`
	AllocsPerOp int64      `json:"allocs_per_op"`
	BytesPerOp  int64      `json:"bytes_per_op"`
}

// Result converts a finished table into its machine-readable form.
func (t *Table) Result(wallSeconds float64, parallelism int, allocs, bytes int64) Result {
	return Result{
		ID:          t.ID,
		Title:       t.Title,
		Header:      t.Header,
		Rows:        t.Rows,
		Notes:       t.Notes,
		WallSeconds: wallSeconds,
		Parallelism: parallelism,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
	}
}

// MeasureAllocs runs f and returns the heap allocation delta it incurred:
// allocation count (Mallocs) and bytes (TotalAlloc). A GC runs first so
// retained garbage from earlier work is not attributed to f; the counters
// are cumulative-monotonic, so concurrent background allocation (none in
// the single-process bench driver) would be the only source of noise.
func MeasureAllocs(f func()) (allocs, bytes int64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs - before.Mallocs), int64(after.TotalAlloc - before.TotalAlloc)
}

// MarshalResults renders results as indented JSON.
func MarshalResults(rs []Result) ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}
