package bench

import "encoding/json"

// Result is the machine-readable form of one experiment run, emitted by
// `memphis-bench -json` so BENCH_*.json trajectory files can accumulate
// across sessions. Rows carry the virtual times (and speedup columns) the
// table prints; WallSeconds is the simulator's real regeneration cost at
// the recorded kernel parallelism.
type Result struct {
	ID          string     `json:"id"`
	Title       string     `json:"title"`
	Header      []string   `json:"header"`
	Rows        [][]string `json:"rows"`
	Notes       []string   `json:"notes,omitempty"`
	WallSeconds float64    `json:"wall_seconds"`
	Parallelism int        `json:"parallelism"`
}

// Result converts a finished table into its machine-readable form.
func (t *Table) Result(wallSeconds float64, parallelism int) Result {
	return Result{
		ID:          t.ID,
		Title:       t.Title,
		Header:      t.Header,
		Rows:        t.Rows,
		Notes:       t.Notes,
		WallSeconds: wallSeconds,
		Parallelism: parallelism,
	}
}

// MarshalResults renders results as indented JSON.
func MarshalResults(rs []Result) ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}
