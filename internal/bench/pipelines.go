package bench

import (
	"fmt"

	"memphis/internal/gpu"
	"memphis/internal/workloads"
)

// series runs one workload size/parameter point across systems and appends
// rows "<param> <system> <time> <speedup vs first system>".
func series(t *Table, param string, env Env, systems []System, build func() *workloads.Workload) {
	var baseTime float64
	for i, sys := range systems {
		secs, _, err := sys.Run(env, build)
		if err != nil {
			panic(fmt.Sprintf("%s/%s: %v", t.ID, sys.Name, err))
		}
		if i == 0 {
			baseTime = secs
		}
		t.Rows = append(t.Rows, []string{param, sys.Name, fmtTime(secs), fmtX(baseTime, secs)})
	}
}

// Fig13a: HCV grid-search cross-validation over input sizes (paper 5-100GB;
// here row counts at ~1/1000 scale where the largest sizes become
// distributed).
func Fig13a(rowSizes []int, cols, folds int, regs []float64) *Table {
	t := &Table{
		ID:     "fig13a",
		Title:  "HCV: grid search / cross-validation linear regression",
		Header: []string{"Rows", "System", "Time[s]", "vs Base"},
		Notes: []string{
			"paper: MPH up to 9.6x over Base; Base-A ~2x; MPH ~20% over MPH-NA; LIMA local-only",
		},
	}
	env := DefaultEnv()
	env.OpMemBudget = 4 << 20 // larger inputs compile to Spark
	env.GPUCapacity = 0       // scale-out cluster: no accelerator
	systems := []System{Base, BaseA, LIMA, Helix, MPHNA, MPH}
	for _, rows := range rowSizes {
		rows := rows
		build := func() *workloads.Workload {
			return workloads.HCV(rows, cols, folds, regs, 7)
		}
		series(t, fmt.Sprintf("%d", rows), env, systems, build)
	}
	return t
}

// Fig13b: PNMF over iteration counts; Base and LIMA degrade superlinearly
// as lazy jobs re-execute prior iterations, MPH's checkpoints bound the
// graph.
func Fig13b(users, movies, rank int, iterCounts []int) *Table {
	t := &Table{
		ID:     "fig13b",
		Title:  "PNMF: Poisson non-negative matrix factorization (MovieLens-like)",
		Header: []string{"Iters", "System", "Time[s]", "vs Base"},
		Notes:  []string{"paper: MPH 7.9x at high iteration counts via checkpoint placement"},
	}
	env := DefaultEnv()
	env.OpMemBudget = 64 << 10 // W and X distributed
	env.GPUCapacity = 0
	systems := []System{Base, LIMA, MPH}
	for _, iters := range iterCounts {
		iters := iters
		build := func() *workloads.Workload {
			return workloads.PNMF(users, movies, rank, iters, 11)
		}
		series(t, fmt.Sprint(iters), env, systems, build)
	}
	return t
}

// Fig13c: HBAND model search over input sizes.
func Fig13c(rowSizes []int, cols int) *Table {
	t := &Table{
		ID:     "fig13c",
		Title:  "HBAND: Hyperband-like model search + weighted ensemble",
		Header: []string{"Rows", "System", "Time[s]", "vs Base"},
		Notes:  []string{"paper: MPH 2.6x/2.5x over Base; ~40% over HELIX and LIMA"},
	}
	env := DefaultEnv()
	env.OpMemBudget = 16 << 20
	env.GPUCapacity = 0
	systems := []System{Base, LIMA, Helix, MPH}
	for _, rows := range rowSizes {
		rows := rows
		build := func() *workloads.Workload {
			return workloads.HBand(rows, cols, 3, 4, 3, 50, 13)
		}
		series(t, fmt.Sprint(rows), env, systems, build)
	}
	return t
}

// Fig14a: CLEAN pipeline enumeration over scale factors.
func Fig14a(rows, cols int, scales []int) *Table {
	t := &Table{
		ID:     "fig14a",
		Title:  "CLEAN: data cleaning pipeline enumeration (APS-like)",
		Header: []string{"Scale", "System", "Time[s]", "vs Base"},
		Notes:  []string{"paper: MPH 3.9x/3.5x/2.3x over Base/LIMA/Base-P at scale 120"},
	}
	env := DefaultEnv()
	// CLEAN runs in driver memory with a large buffer pool (the paper's
	// primitives are local with parallel feature processing); the driver
	// cache is scaled to the same cache:data ratio as the paper's 5GB
	// against ~10GB of replicated APS data.
	env.OpMemBudget = 1 << 30
	env.GPUCapacity = 0
	env.CPBudget = 256 << 20 // the scale-up node buffer pool (100GB) at scale
	systems := []System{Base, BaseP, LIMA, MPH}
	for _, sc := range scales {
		sc := sc
		build := func() *workloads.Workload {
			return workloads.Clean(rows, cols, sc, 3, 17)
		}
		series(t, fmt.Sprint(sc), env, systems, build)
	}
	return t
}

// Fig14b: HDROP dropout-rate tuning with a batch-wise input data pipeline.
func Fig14b(rows, cols, hidden int, rates []float64, epochs, batch int) *Table {
	t := &Table{
		ID:     "fig14b",
		Title:  "HDROP: autoencoder dropout-rate tuning (KDD98-like)",
		Header: []string{"Config", "System", "Time[s]", "vs Base-C"},
		Notes:  []string{"paper: MPH 1.7x over Base-G; CoorDL (CPU-only IDP reuse) 24% slower than MPH"},
	}
	env := DefaultEnv()
	env.OpMemBudget = 1 << 30
	env.GPUMinCells = 512
	// LIMA here runs the same CPU+GPU plan but reuses only local
	// intermediates (no GPU pointer caching).
	limaG := LIMA
	limaG.GPU = true
	limaG.GPUPolicy = gpu.PolicyNone
	systems := []System{BaseC, BaseG, limaG, CoorDL, MPH}
	build := func() *workloads.Workload {
		return workloads.HDrop(rows, cols, hidden, rates, epochs, batch, 19)
	}
	series(t, fmt.Sprintf("%d rates", len(rates)), env, systems, build)
	return t
}

// Fig14c: EN2DE language-translation scoring with prediction reuse.
func Fig14c(nWords, vocab, dim, hidden int) *Table {
	t := &Table{
		ID:     "fig14c",
		Title:  "EN2DE: pre-trained translation scoring (WMT14-like Zipf words)",
		Header: []string{"Words", "System", "Time[s]", "vs Base-G"},
		Notes: []string{
			"paper: MPH 5x over Base-G; MPH-F 4x; Clipper ~MPH; PyTorch 2x over Base-G but 2.4x slower than MPH",
		},
	}
	env := DefaultEnv()
	env.OpMemBudget = 1 << 30
	env.GPUMinCells = 64
	systems := []System{BaseG, PyTorch, MPHF, Clipper, MPH}
	build := func() *workloads.Workload {
		return workloads.En2De(nWords, vocab, dim, hidden, 23)
	}
	series(t, fmt.Sprint(nWords), env, systems, build)
	return t
}

// Fig14d: TLVIS transfer-learning feature extraction on CIFAR-like and
// ImageNet-like test sets. PyTorch (pool allocator, no cleanup between
// models) hits device OOM and falls back; PyTorch-Clr adds the manual
// empty_cache() the paper describes.
func Fig14d(nImages, batch int) *Table {
	t := &Table{
		ID:     "fig14d",
		Title:  "TLVIS: transfer learning feature extraction (3 pre-trained CNNs)",
		Header: []string{"Dataset", "System", "Time[s]", "vs Base-G", "Status"},
		Notes: []string{
			"paper: MPH 2x (CIFAR) / 3x (ImageNet); VISTA ~MPH; PyTorch OOMs without empty_cache, 1.5x slower than MPH",
		},
	}
	datasetsSpec := []struct {
		name string
		h    int
	}{
		{"CIFAR-10~8x8", 8}, {"ImageNet~16x16", 16},
	}
	for _, ds := range datasetsSpec {
		env := DefaultEnv()
		env.OpMemBudget = 1 << 30
		env.GPUMinCells = 64
		// Device sized so the three models' working sets do not co-reside:
		// the allocation-pattern shift between models matters.
		env.GPUCapacity = int64(nImages*ds.h*ds.h*3*8) * 16
		var baseTime float64
		for i, sys := range []System{BaseG, VISTA, PyTorch, PyTorchClr, MPH} {
			build := func() *workloads.Workload {
				return workloads.TLVis(nImages, batch, ds.h, ds.h, 29)
			}
			secs, ctx, err := sys.Run(env, build)
			if err != nil {
				panic(err)
			}
			if i == 0 {
				baseTime = secs
			}
			status := "ok"
			timeCell := fmtTime(secs)
			speedCell := fmtX(baseTime, secs)
			if ctx.Stats.GPUFallbacks > 0 {
				status = fmt.Sprintf("OOM x%d (needs empty_cache)", ctx.Stats.GPUFallbacks)
				if sys.Name == "PyTorch" {
					// The paper's PyTorch run aborts with out-of-memory;
					// the simulator degrades to CPU instead, so its time
					// is not comparable.
					timeCell, speedCell, status = "-", "FAILED", "OOM (torch.compile)"
				}
			}
			t.Rows = append(t.Rows, []string{ds.name, sys.Name, timeCell, speedCell, status})
		}
	}
	return t
}

// Table3 prints the pipeline/dataset inventory.
func Table3() *Table {
	return &Table{
		ID:     "table3",
		Title:  "Overview of ML pipeline use cases & datasets",
		Header: []string{"Name", "Use Case", "Dataset", "Influential Techniques"},
		Rows: [][]string{
			{"HCV", "Grid Search / Cross Validation", "Synthetic regression", "Async ops, local & RDD reuse"},
			{"PNMF", "Non-negative Matrix Factorization", "MovieLens-like ratings", "Checkpoint placement"},
			{"HBAND", "Hyperband Model Selection", "Synthetic classification", "Multi-level reuse, delayed caching"},
			{"CLEAN", "Data Cleaning Pipelines", "APS-like (0.6% missing)", "Many intermediates & evictions"},
			{"HDROP", "Dropout Rate Tuning", "KDD98-like (categorical)", "Local and GPU ptr. reuse"},
			{"EN2DE", "Machine Translation Inference", "WMT14-like Zipf words", "Recycle & reuse GPU ptrs."},
			{"TLVIS", "Transfer Learning Feature Extraction", "CIFAR/ImageNet-like images", "Evictions & memory management"},
		},
	}
}
