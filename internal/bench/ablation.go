package bench

import (
	"fmt"

	"memphis/internal/runtime"
	"memphis/internal/workloads"
)

// Ablation quantifies each MEMPHIS design choice by disabling it from the
// full system, on the two pipelines that exercise the compiler extensions
// hardest: HCV (async exchange, action/RDD reuse) and PNMF (checkpoint
// placement, delayed caching). Rows report the slowdown relative to full
// MPH, i.e. the contribution of the ablated feature.
func Ablation(hcvRows, pnmfIters int) *Table {
	t := &Table{
		ID:     "ablation",
		Title:  "Ablation of MEMPHIS design choices (slowdown vs full MPH)",
		Header: []string{"Workload", "Variant", "Time[s]", "vs MPH"},
		Notes: []string{
			"each variant removes exactly one mechanism from full MEMPHIS",
		},
	}
	variants := []struct {
		name string
		mut  func(System) System
	}{
		{"MPH (full)", func(s System) System { return s }},
		{"-async ops", func(s System) System { s.Async = false; return s }},
		{"-maxParallelize", func(s System) System { s.MaxPar = false; return s }},
		{"-checkpoints", func(s System) System { s.Checkpoints = false; return s }},
		{"-delayed caching", func(s System) System { s.AutoTune = false; return s }},
		{"-multi-level reuse", func(s System) System { s.Mode = runtime.ReuseMemphisFine; return s }},
		{"-all reuse", func(s System) System { s.Mode = runtime.ReuseNone; return s }},
	}
	cases := []struct {
		name  string
		env   Env
		build func() *workloads.Workload
	}{
		{"HCV", func() Env {
			e := DefaultEnv()
			e.OpMemBudget = 4 << 20
			e.GPUCapacity = 0
			return e
		}(), func() *workloads.Workload {
			return workloads.HCV(hcvRows, 48, 3,
				[]float64{1e-3, 1e-2, 1e-1, 1, 10, 100}, 7)
		}},
		{"PNMF", func() Env {
			e := DefaultEnv()
			e.OpMemBudget = 64 << 10
			e.GPUCapacity = 0
			return e
		}(), func() *workloads.Workload {
			return workloads.PNMF(3000, 60, 8, pnmfIters, 11)
		}},
	}
	for _, c := range cases {
		var full float64
		for i, v := range variants {
			sys := v.mut(MPH)
			sys.Name = v.name
			secs, _, err := sys.Run(c.env, c.build)
			if err != nil {
				panic(fmt.Sprintf("ablation/%s/%s: %v", c.name, v.name, err))
			}
			if i == 0 {
				full = secs
			}
			t.Rows = append(t.Rows, []string{c.name, v.name, fmtTime(secs),
				fmt.Sprintf("%.2fx", secs/full)})
		}
	}
	return t
}
