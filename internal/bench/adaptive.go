package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"memphis/internal/compiler"
	"memphis/internal/core"
	"memphis/internal/costs"
	"memphis/internal/data"
	"memphis/internal/ir"
	"memphis/internal/runtime"
	"memphis/internal/spark"
)

// Static-vs-adaptive A/B of the closed-loop cost model (memphis-bench
// -adaptive). Each case runs the same crossover microbenchmark twice — once
// with static threshold placement, once with Options.AdaptivePlacement —
// and reports the virtual-time delta, the calibration epochs reached, and
// the per-backend executed-operator counts, which show placements moving
// between backends as observed reuse accumulates.
//
// Everything reported is virtual: no wall-clock field appears in the JSON,
// so two runs of the same binary byte-compare equal (the CI determinism
// gate relies on this).

// AdaptiveRow is one workload's A/B result.
type AdaptiveRow struct {
	Workload string `json:"workload"`

	StaticVSeconds   float64 `json:"static_virtual_seconds"`
	AdaptiveVSeconds float64 `json:"adaptive_virtual_seconds"`
	DeltaVSeconds    float64 `json:"delta_virtual_seconds"` // static - adaptive (positive = adaptive faster)

	Epochs         uint64 `json:"calibration_epochs"`
	Recalibrations int64  `json:"recalibrations"`

	// Executed operators per backend under each policy, and the adaptive
	// run's cache probes per backend. A reuse-driven placement flip shows
	// up as probes recorded under more than one backend for the same
	// operator: the op was probed where the evolving expected-cost argmin
	// placed it, before and after the crossover.
	StaticOps      BackendOps `json:"static_ops"`
	AdaptiveOps    BackendOps `json:"adaptive_ops"`
	AdaptiveProbes BackendOps `json:"adaptive_probes"`
	// Flipped reports that adaptive placement diverged from static: the
	// executed-op counts moved between backends, or some operator's probes
	// span multiple backends (a mid-run reuse-driven flip).
	Flipped bool `json:"flipped"`
}

// BackendOps counts executed operator instructions per backend.
type BackendOps struct {
	CP    int64 `json:"cp"`
	Spark int64 `json:"spark"`
	GPU   int64 `json:"gpu"`
}

// adaptiveBenchModel is the crossover-scaled cost model the A/B runs
// under: the paper-scale constants with driver throughput scaled down
// 1000x, matching the simulator's 1/1000-scale input sizes, so the
// CP/Spark break-even lands inside the microbenchmark sweep instead of
// orders of magnitude above it.
func adaptiveBenchModel() *costs.Model {
	m := *costs.Default()
	m.CPUFlops /= 1000
	return &m
}

// adaptiveCase is one crossover microbenchmark.
type adaptiveCase struct {
	name string
	rows int
	cols int
	// loopDep makes the loop body recompute a fresh input every iteration
	// (Xi = X * i), so the operator executes — rather than probes — each
	// time and placement differences show up as virtual-time deltas.
	// Without it, the loop recomputes the same tsmm and every iteration
	// after the first is a cache hit: the reuse probability climbs to one
	// and placement flips on pure reuse evidence.
	loopDep bool
	iters   int
}

// adaptiveCases are the crossover microbenchmarks:
//
//   - gray-window: a loop-dependent tsmm whose input (1 MB) sits just above
//     the static OpMemBudget threshold. Static placement ships it to Spark
//     every iteration and pays the job overhead; the expected-cost query
//     keeps it on CP, where the raw compute is genuinely cheaper. The
//     virtual-time delta is the per-iteration Spark tax.
//   - reuse-flip: a loop-invariant tsmm above the break-even (Spark wins on
//     raw cost). From iteration two on, every probe hits; once the observed
//     reuse probability quantizes to one, the expected cost collapses to
//     the hit-service cost and placement flips Spark -> CP — visible as
//     probes recorded under both backends.
func adaptiveCases(quick bool) []adaptiveCase {
	iters := 32
	if quick {
		iters = 20
	}
	return []adaptiveCase{
		{"gray-window", 9000, 16, true, iters},
		{"reuse-flip", 20000, 16, false, iters},
	}
}

func adaptiveProg(c adaptiveCase) (*ir.Program, *data.Matrix) {
	src := ir.Var("X")
	if c.loopDep {
		src = ir.Mul(ir.Var("X"), ir.Var("i"))
	}
	body := ir.BB(
		ir.Assign("g", ir.TSMM(src)),
		ir.Assign("s", ir.Sum(ir.Var("g"))),
	)
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.ForRange("i", c.iters, body)}
	return prog, data.RandNorm(c.rows, c.cols, 0, 1, 7)
}

func runAdaptiveCase(c adaptiveCase, adaptive bool) (*runtime.Context, error) {
	ctx := runtime.New(runtime.Config{
		Mode:     runtime.ReuseMemphis,
		Compiler: compiler.DefaultConfig(),
		Cache:    core.DefaultConfig(),
		Spark:    spark.DefaultConfig(),
		Model:    adaptiveBenchModel(),
		Adaptive: adaptive,
	})
	prog, x := adaptiveProg(c)
	ctx.BindHost("X", x)
	if err := ctx.RunProgram(prog); err != nil {
		ctx.Close()
		return nil, err
	}
	return ctx, nil
}

func backendOps(ctx *runtime.Context) BackendOps {
	return BackendOps{CP: ctx.Stats.CPInsts, Spark: ctx.Stats.SPInsts, GPU: ctx.Stats.GPUInsts}
}

// probeStats aggregates the adaptive run's cache probes per backend and
// reports whether any single operator was probed under more than one
// backend (the signature of a mid-run placement flip).
func probeStats(ctx *runtime.Context) (BackendOps, bool) {
	var p BackendOps
	multi := false
	byOp := make(map[string]map[int]bool)
	for _, r := range ctx.ReuseSnapshot() {
		switch r.Backend {
		case 0:
			p.CP += r.Probes
		case 1:
			p.Spark += r.Probes
		case 2:
			p.GPU += r.Probes
		}
		if byOp[r.Op] == nil {
			byOp[r.Op] = make(map[int]bool)
		}
		byOp[r.Op][r.Backend] = true
		if len(byOp[r.Op]) > 1 {
			multi = true
		}
	}
	return p, multi
}

// AdaptiveReport runs the static-vs-adaptive A/B and returns one row per
// crossover case.
func AdaptiveReport(quick bool) ([]AdaptiveRow, error) {
	var out []AdaptiveRow
	for _, c := range adaptiveCases(quick) {
		st, err := runAdaptiveCase(c, false)
		if err != nil {
			return nil, fmt.Errorf("%s static: %w", c.name, err)
		}
		ad, err := runAdaptiveCase(c, true)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("%s adaptive: %w", c.name, err)
		}
		row := AdaptiveRow{
			Workload:         c.name,
			StaticVSeconds:   st.Clock.Now(),
			AdaptiveVSeconds: ad.Clock.Now(),
			DeltaVSeconds:    st.Clock.Now() - ad.Clock.Now(),
			Recalibrations:   ad.Stats.Recalibrations,
			StaticOps:        backendOps(st),
			AdaptiveOps:      backendOps(ad),
		}
		if rep := ad.CalibrationReport(); rep != nil {
			row.Epochs = rep.Epoch
		}
		probes, multi := probeStats(ad)
		row.AdaptiveProbes = probes
		row.Flipped = row.StaticOps != row.AdaptiveOps || multi
		st.Close()
		ad.Close()
		out = append(out, row)
	}
	return out, nil
}

// MarshalAdaptive renders the A/B rows as deterministic indented JSON.
func MarshalAdaptive(rows []AdaptiveRow) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}

// AdaptiveTable renders the A/B rows as a fixed-width text table.
func AdaptiveTable(rows []AdaptiveRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s %12s %7s %7s %18s %18s %18s %8s\n",
		"workload", "static(vs)", "adaptive(vs)", "delta(vs)", "epochs", "recal",
		"static ops", "adaptive ops", "probes", "flipped")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %14.6f %14.6f %12.6f %7d %7d %18s %18s %18s %8t\n",
			r.Workload, r.StaticVSeconds, r.AdaptiveVSeconds, r.DeltaVSeconds,
			r.Epochs, r.Recalibrations,
			fmt.Sprintf("%d/%d/%d", r.StaticOps.CP, r.StaticOps.Spark, r.StaticOps.GPU),
			fmt.Sprintf("%d/%d/%d", r.AdaptiveOps.CP, r.AdaptiveOps.Spark, r.AdaptiveOps.GPU),
			fmt.Sprintf("%d/%d/%d", r.AdaptiveProbes.CP, r.AdaptiveProbes.Spark, r.AdaptiveProbes.GPU),
			r.Flipped)
	}
	b.WriteString("(ops = executed operators cp/spark/gpu; probes = adaptive run's cache probes cp/spark/gpu;\n" +
		" all quantities virtual and byte-stable across runs)\n")
	return b.String()
}
