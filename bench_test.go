// Package-level benchmarks: one testing.B benchmark per table and figure of
// the paper's evaluation (reduced-size variants; `go run ./cmd/memphis-bench
// all` regenerates the full series), plus micro benchmarks of the reuse
// machinery itself. All reported "time" inside the experiments is virtual;
// these benchmarks measure the simulator's wall-clock cost of regenerating
// each experiment.
package memphis

import (
	"testing"

	"memphis/internal/bench"
	"memphis/internal/data"
	"memphis/internal/ir"
)

// benchExperiment runs an experiment's quick variant b.N times.
func benchExperiment(b *testing.B, id string) {
	e, err := bench.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tb := e.Quick(); len(tb.Rows) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTable2Backends(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkFig2cEagerVsLazy(b *testing.B)       { benchExperiment(b, "fig2c") }
func BenchmarkFig2dGPUOverhead(b *testing.B)       { benchExperiment(b, "fig2d") }
func BenchmarkFig11aReuseOverhead(b *testing.B)    { benchExperiment(b, "fig11a") }
func BenchmarkFig11bInstrScaling(b *testing.B)     { benchExperiment(b, "fig11b") }
func BenchmarkFig12aCacheSizes(b *testing.B)       { benchExperiment(b, "fig12a") }
func BenchmarkFig12bGPUCacheEviction(b *testing.B) { benchExperiment(b, "fig12b") }
func BenchmarkTable3Pipelines(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkFig13aHCV(b *testing.B)              { benchExperiment(b, "fig13a") }
func BenchmarkFig13bPNMF(b *testing.B)             { benchExperiment(b, "fig13b") }
func BenchmarkFig13cHBand(b *testing.B)            { benchExperiment(b, "fig13c") }
func BenchmarkFig14aClean(b *testing.B)            { benchExperiment(b, "fig14a") }
func BenchmarkFig14bHDrop(b *testing.B)            { benchExperiment(b, "fig14b") }
func BenchmarkFig14cEn2De(b *testing.B)            { benchExperiment(b, "fig14c") }
func BenchmarkFig14dTLVis(b *testing.B)            { benchExperiment(b, "fig14d") }

// BenchmarkSessionReuseHit measures the full probe-and-reuse path of one
// repeated program through the public API.
func BenchmarkSessionReuseHit(b *testing.B) {
	s := New(Options{Reuse: ReuseFull})
	s.Bind("X", data.RandNorm(256, 16, 0, 1, 7))
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.BB(
		ir.Assign("G", ir.TSMM(ir.Var("X"))),
		ir.Assign("t", ir.Sum(ir.Var("G"))),
	)}
	if err := s.Run(prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionBase measures the same program without tracing/reuse.
func BenchmarkSessionBase(b *testing.B) {
	s := New(Options{})
	s.Bind("X", data.RandNorm(256, 16, 0, 1, 7))
	prog := ir.NewProgram()
	prog.Main = []ir.Block{ir.BB(
		ir.Assign("G", ir.TSMM(ir.Var("X"))),
		ir.Assign("t", ir.Sum(ir.Var("G"))),
	)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}
